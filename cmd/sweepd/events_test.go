package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// readEvents tails one job's NDJSON stream to EOF (the stream closes
// itself at the job's terminal state) and decodes every line.
func readEvents(t *testing.T, ts *httptest.Server, id string) []jobEvent {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET events: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var events []jobEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev jobEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// TestJobEventsStream: tailing a live job yields the full lifecycle —
// job_queued, job_started, a started/done pair per cell, job_done —
// with dense per-job sequence numbers and per-cell outcome data.
func TestJobEventsStream(t *testing.T) {
	_, ts := startServer(t)
	blob, _ := json.Marshal(testRequest)
	j, _ := postJob(t, ts, string(blob))

	// Tail live: the GET is issued while the job runs (or is queued) and
	// returns only once the terminal event has been streamed.
	events := readEvents(t, ts, j.ID)
	if len(events) != 2+2*len(j.Cells)+1 {
		t.Fatalf("got %d events, want %d (queued+started+2×%d cells+done)",
			len(events), 2+2*len(j.Cells)+1, len(j.Cells))
	}
	for i, ev := range events {
		if ev.Seq != i+1 {
			t.Errorf("event %d has seq %d, want dense numbering", i, ev.Seq)
		}
		if ev.Job != j.ID {
			t.Errorf("event %d names job %q, want %q", i, ev.Job, j.ID)
		}
	}
	if events[0].Type != "job_queued" || events[1].Type != "job_started" {
		t.Errorf("stream starts %q, %q; want job_queued, job_started", events[0].Type, events[1].Type)
	}
	last := events[len(events)-1]
	if last.Type != "job_done" || last.CellsDone != len(j.Cells) {
		t.Errorf("stream ends %+v, want job_done with %d cells", last, len(j.Cells))
	}
	var started, done int
	for _, ev := range events {
		switch ev.Type {
		case "cell_started":
			started++
			if ev.Bench == "" || ev.Label == "" || ev.Address == "" {
				t.Errorf("cell_started lacks identity: %+v", ev)
			}
		case "cell_done":
			done++
			if ev.Kind == "" {
				t.Errorf("cell_done lacks a fast-path kind: %+v", ev)
			}
			if ev.HostSeconds <= 0 || ev.VirtualSeconds <= 0 {
				t.Errorf("cell_done lacks timings: %+v", ev)
			}
			if ev.Error != "" {
				t.Errorf("cell failed: %+v", ev)
			}
		}
	}
	if started != len(j.Cells) || done != len(j.Cells) {
		t.Errorf("saw %d started / %d done cell events, want %d each", started, done, len(j.Cells))
	}

	// Replay: a finished job's stream is its complete history, byte-for-
	// byte re-decodable, and closes without waiting.
	replay := readEvents(t, ts, j.ID)
	if len(replay) != len(events) {
		t.Errorf("replay has %d events, live tail had %d", len(replay), len(events))
	}

	// Unknown jobs 404.
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job events: got %s, want 404", resp.Status)
	}
}

// TestMetricsHistograms: after one job, /metrics exposes the telemetry
// contract — queue-wait, run-time, per-endpoint HTTP latency and
// per-cell host-seconds histograms, plus the build-info gauge.
func TestMetricsHistograms(t *testing.T) {
	_, ts := startServer(t)
	blob, _ := json.Marshal(testRequest)
	j, _ := postJob(t, ts, string(blob))
	waitDone(t, ts, j.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE upmgo_sweepd_job_queue_seconds histogram",
		"upmgo_sweepd_job_queue_seconds_count 1",
		`upmgo_sweepd_job_run_seconds_count{state="done"} 1`,
		"# TYPE upmgo_sweepd_http_request_seconds histogram",
		`endpoint="POST /v1/jobs"`,
		`endpoint="GET /v1/jobs/{id}"`,
		"# TYPE upmgo_sweep_cell_host_seconds histogram",
		`upmgo_sweep_cell_host_seconds_count{bench="BT",cell="ft-IRIX"} 1`,
		"upmgo_build_info{",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}
}

// TestRequestLogging: the telemetry middleware writes one structured
// line per request through the server's logger.
func TestRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	s := newServer(1, 2, nil, slog.New(slog.NewTextHandler(&buf, nil))) // worker never started
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	line := buf.String()
	for _, want := range []string{"msg=request", "method=GET", `endpoint="GET /v1/jobs"`, "code=200"} {
		if !strings.Contains(line, want) {
			t.Errorf("request log lacks %q: %s", want, line)
		}
	}
}

// Command nasbench runs one NAS benchmark reproduction on the simulated
// Origin2000 under a chosen placement scheme and migration engine, and
// prints the timing and migration statistics.
//
// Examples:
//
//	nasbench -bench BT -class W -placement wc -upm dist
//	nasbench -bench SP -placement ft -upm recrep -iters 30
//	nasbench -bench FT -class W -placement rand -kmig
//	nasbench -bench SP -class W -steady -v
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"upmgo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, flag.ErrHelp) {
			fmt.Fprintf(os.Stderr, "nasbench: %v\n", err)
		}
		os.Exit(1)
	}
}

// run is main without the process exit, testable against any streams.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("nasbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "BT", "benchmark: BT, SP, CG, MG, FT or LU (extension)")
	class := fs.String("class", "W", "problem class: S, W or A")
	placement := fs.String("placement", "ft", "page placement: ft, rr, rand or wc")
	kmigOn := fs.Bool("kmig", false, "enable the IRIX-style kernel migration engine")
	upmMode := fs.String("upm", "off", "UPMlib mode: off, dist (data distribution) or recrep (record-replay)")
	iters := fs.Int("iters", 0, "main-loop iterations (0 = class default)")
	scale := fs.Int("scale", 1, "repeat each phase body N times (the paper's Figure 6 scaling)")
	seed := fs.Uint64("seed", 42, "workload seed")
	threads := fs.Int("threads", 0, "team size (0 = all simulated CPUs)")
	steady := fs.Bool("steady", false, "detect the steady state and fast-forward the remaining iterations")
	extrapolate := fs.Bool("extrapolate", true, "with -steady: extrapolate the tail once detected (false = detection-only)")
	periodk := fs.Int("periodk", 0, "with -steady: cap the detector's orbit length (0 = default cap 8, 1 = period-one only)")
	campaign := fs.Bool("campaign", true, "with -steady: analytically fast-forward a converging kernel-migration campaign (false = simulate it)")
	elide := fs.Bool("elide", false, "arm the resident-elision fast path (bit-identical results)")
	verbose := fs.Bool("v", false, "print per-iteration times")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}

	cfg := upmgo.NASConfig{
		Iterations:    *iters,
		ComputeScale:  *scale,
		Seed:          *seed,
		Threads:       *threads,
		KernelMig:     *kmigOn,
		SkipVerify:    *scale > 1,
		SteadyState:   *steady,
		Extrapolate:   *steady && *extrapolate,
		PeriodK:       *periodk,
		NoCampaignFF:  !*campaign,
		ResidentElide: *elide,
	}
	switch strings.ToUpper(*class) {
	case "S":
		cfg.Class = upmgo.ClassS
	case "W":
		cfg.Class = upmgo.ClassW
	case "A":
		cfg.Class = upmgo.ClassA
	default:
		return fmt.Errorf("unknown class %q", *class)
	}
	switch *placement {
	case "ft":
		cfg.Placement = upmgo.FirstTouch
	case "rr":
		cfg.Placement = upmgo.RoundRobin
	case "rand":
		cfg.Placement = upmgo.Random
	case "wc":
		cfg.Placement = upmgo.WorstCase
	default:
		return fmt.Errorf("unknown placement %q", *placement)
	}
	switch *upmMode {
	case "off":
		cfg.UPM = upmgo.UPMOff
	case "dist":
		cfg.UPM = upmgo.UPMDistribute
	case "recrep":
		cfg.UPM = upmgo.UPMRecRep
	default:
		return fmt.Errorf("unknown upm mode %q", *upmMode)
	}

	r, err := upmgo.RunNAS(strings.ToUpper(*bench), cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s Class %s  %s  (%d threads)\n", r.Kernel, r.Class, r.Label, teamSize(cfg))
	fmt.Fprintf(stdout, "  main loop      %.4f virtual s over %d iterations\n", r.Seconds(), len(r.IterPS))
	fmt.Fprintf(stdout, "  cold start     %.4f virtual s\n", float64(r.ColdPS)/1e12)
	fmt.Fprintf(stdout, "  remote share   %.1f%% of memory accesses\n", 100*r.Mach.RemoteRatio())
	fmt.Fprintf(stdout, "  page faults    %d   kernel migrations %d\n", r.Mach.Faults, r.KmigMoves)
	if cfg.UPM != upmgo.UPMOff {
		fmt.Fprintf(stdout, "  UPMlib         %d migrations (%d in the first invocation), %d replays, %d undos, %d frozen\n",
			r.UPM.Migrations, r.UPM.FirstInvocation, r.UPM.ReplayMigrations, r.UPM.UndoMigrations, r.UPM.Frozen)
		fmt.Fprintf(stdout, "  UPMlib cost    %.4f virtual s on the critical path\n", float64(r.UPM.OverheadPS)/1e12)
	}
	if r.CampaignIters > 0 {
		fmt.Fprintf(stdout, "  campaign       drained %d iterations analytically at iteration %d\n",
			r.CampaignIters, r.CampaignAt)
	}
	if r.SteadyAt != 0 {
		period := r.SteadyPeriod
		if period == 0 {
			period = 1
		}
		fmt.Fprintf(stdout, "  steady state   period %d detected at iteration %d; %d iterations extrapolated\n",
			period, r.SteadyAt, r.ExtrapolatedIters)
	} else if *steady {
		// The typed diagnosis replaces the old guesswork string: the
		// detector reports what actually blocked it (reason + evidence).
		if w := r.FastPath.WhyNot; w != nil {
			fmt.Fprintf(stdout, "  steady state   not detected [%s]: %s\n", w.Reason, w)
		} else {
			fmt.Fprintf(stdout, "  steady state   not detected\n")
		}
	}
	if r.VerifyErr != nil {
		fmt.Fprintf(stdout, "  VERIFY FAILED  %v\n", r.VerifyErr)
		return fmt.Errorf("%s failed verification: %w", r.Kernel, r.VerifyErr)
	}
	if r.Verified {
		fmt.Fprintf(stdout, "  verified       ok\n")
	}
	if *verbose {
		for i, ps := range r.IterPS {
			fmt.Fprintf(stdout, "  iter %3d  %.6f s  (phase %.6f s)\n", i+1, float64(ps)/1e12, float64(r.PhasePS[i])/1e12)
		}
	}
	return nil
}

func teamSize(cfg upmgo.NASConfig) int {
	if cfg.Threads != 0 {
		return cfg.Threads
	}
	mc := upmgo.DefaultMachineConfig()
	cfg.Class.MachineTweak(&mc)
	return mc.Nodes * mc.CPUsPerNode
}

// Command nasbench runs one NAS benchmark reproduction on the simulated
// Origin2000 under a chosen placement scheme and migration engine, and
// prints the timing and migration statistics.
//
// Examples:
//
//	nasbench -bench BT -class W -placement wc -upm dist
//	nasbench -bench SP -placement ft -upm recrep -iters 30
//	nasbench -bench FT -class W -placement rand -kmig
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"upmgo"
)

func main() {
	bench := flag.String("bench", "BT", "benchmark: BT, SP, CG, MG, FT or LU (extension)")
	class := flag.String("class", "W", "problem class: S, W or A")
	placement := flag.String("placement", "ft", "page placement: ft, rr, rand or wc")
	kmigOn := flag.Bool("kmig", false, "enable the IRIX-style kernel migration engine")
	upmMode := flag.String("upm", "off", "UPMlib mode: off, dist (data distribution) or recrep (record-replay)")
	iters := flag.Int("iters", 0, "main-loop iterations (0 = class default)")
	scale := flag.Int("scale", 1, "repeat each phase body N times (the paper's Figure 6 scaling)")
	seed := flag.Uint64("seed", 42, "workload seed")
	threads := flag.Int("threads", 0, "team size (0 = all simulated CPUs)")
	verbose := flag.Bool("v", false, "print per-iteration times")
	flag.Parse()

	cfg := upmgo.NASConfig{
		Iterations:   *iters,
		ComputeScale: *scale,
		Seed:         *seed,
		Threads:      *threads,
		KernelMig:    *kmigOn,
		SkipVerify:   *scale > 1,
	}
	switch strings.ToUpper(*class) {
	case "S":
		cfg.Class = upmgo.ClassS
	case "W":
		cfg.Class = upmgo.ClassW
	case "A":
		cfg.Class = upmgo.ClassA
	default:
		fatal("unknown class %q", *class)
	}
	switch *placement {
	case "ft":
		cfg.Placement = upmgo.FirstTouch
	case "rr":
		cfg.Placement = upmgo.RoundRobin
	case "rand":
		cfg.Placement = upmgo.Random
	case "wc":
		cfg.Placement = upmgo.WorstCase
	default:
		fatal("unknown placement %q", *placement)
	}
	switch *upmMode {
	case "off":
		cfg.UPM = upmgo.UPMOff
	case "dist":
		cfg.UPM = upmgo.UPMDistribute
	case "recrep":
		cfg.UPM = upmgo.UPMRecRep
	default:
		fatal("unknown upm mode %q", *upmMode)
	}

	r, err := upmgo.RunNAS(strings.ToUpper(*bench), cfg)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("%s Class %s  %s  (%d threads)\n", r.Kernel, r.Class, r.Label, teamSize(cfg))
	fmt.Printf("  main loop      %.4f virtual s over %d iterations\n", r.Seconds(), len(r.IterPS))
	fmt.Printf("  cold start     %.4f virtual s\n", float64(r.ColdPS)/1e12)
	fmt.Printf("  remote share   %.1f%% of memory accesses\n", 100*r.Mach.RemoteRatio())
	fmt.Printf("  page faults    %d   kernel migrations %d\n", r.Mach.Faults, r.KmigMoves)
	if cfg.UPM != upmgo.UPMOff {
		fmt.Printf("  UPMlib         %d migrations (%d in the first invocation), %d replays, %d undos, %d frozen\n",
			r.UPM.Migrations, r.UPM.FirstInvocation, r.UPM.ReplayMigrations, r.UPM.UndoMigrations, r.UPM.Frozen)
		fmt.Printf("  UPMlib cost    %.4f virtual s on the critical path\n", float64(r.UPM.OverheadPS)/1e12)
	}
	if r.VerifyErr != nil {
		fmt.Printf("  VERIFY FAILED  %v\n", r.VerifyErr)
		os.Exit(1)
	}
	if r.Verified {
		fmt.Printf("  verified       ok\n")
	}
	if *verbose {
		for i, ps := range r.IterPS {
			fmt.Printf("  iter %3d  %.6f s  (phase %.6f s)\n", i+1, float64(ps)/1e12, float64(r.PhasePS[i])/1e12)
		}
	}
}

func teamSize(cfg upmgo.NASConfig) int {
	if cfg.Threads != 0 {
		return cfg.Threads
	}
	mc := upmgo.DefaultMachineConfig()
	cfg.Class.MachineTweak(&mc)
	return mc.Nodes * mc.CPUsPerNode
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "nasbench: "+format+"\n", args...)
	os.Exit(1)
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-nope"},
		{"-bench", "UA"},
		{"-class", "Q"},
		{"-placement", "best"},
		{"-upm", "sometimes"},
		{"stray"},
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if err := run(args, &out, &errw); err == nil {
			t.Errorf("run(%v) succeeded, want an error", args)
		}
	}
}

// TestRunBaseline drives one fast cell end to end and checks the report's
// shape: the header names the config, the loop ran the asked iterations,
// and verification passed.
func TestRunBaseline(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-bench", "CG", "-class", "S", "-placement", "wc", "-upm", "dist",
		"-iters", "4", "-v"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"CG Class S  wc-upmlib",
		"over 4 iterations",
		"UPMlib",
		"verified       ok",
		"iter   4",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output lacks %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "iter   5") {
		t.Error("ran more iterations than -iters asked for")
	}
}

// TestRunSteady: the -steady flag reports the detection point, and the
// extrapolated run's headline virtual time matches the simulated one.
func TestRunSteady(t *testing.T) {
	var plain, steady, errw bytes.Buffer
	base := []string{"-bench", "SP", "-class", "S", "-iters", "10", "-threads", "1"}
	if err := run(base, &plain, &errw); err != nil {
		t.Fatal(err)
	}
	if err := run(append(base, "-steady"), &steady, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(steady.String(), "steady state   period 1 detected at iteration") {
		t.Errorf("steady run did not report detection:\n%s", steady.String())
	}
	// Identical except for the added steady-state line: drop it and compare.
	var kept []string
	for _, line := range strings.Split(steady.String(), "\n") {
		if !strings.Contains(line, "steady state") {
			kept = append(kept, line)
		}
	}
	if got := strings.Join(kept, "\n"); got != plain.String() {
		t.Errorf("extrapolated report diverges from simulated:\n--- plain\n%s\n--- steady\n%s",
			plain.String(), got)
	}
}

// TestRunSteadyNotDetected: when the loop ends before the detector can
// prove an orbit, the report says so instead of staying silent.
func TestRunSteadyNotDetected(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-bench", "SP", "-class", "S", "-iters", "3", "-threads", "1", "-steady"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "steady state   not detected [loop_too_short]:") {
		t.Errorf("short steady run did not give the typed diagnosis:\n%s", out.String())
	}
}

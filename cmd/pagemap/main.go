// Command pagemap runs a NAS benchmark and prints, after selected
// iterations, where every hot page lives — a text heatmap of the data
// distribution that page placement and the migration engines produce.
// Each character is one page; its symbol is the node id (0-7) holding the
// page, '*' marks pages with read replicas, '!' frozen pages.
//
// Example — watch UPMlib turn a worst-case placement into a block
// distribution after the first iteration:
//
//	pagemap -bench BT -placement wc -upm dist
//
// With -from, pagemap renders a metrics series captured earlier by
// `sweep -metrics` instead of running a simulation: each character is
// then the node that referenced the page most during that iteration
// ('.' where no references landed — cache-resident or frozen pages):
//
//	pagemap -from out/bt-wc-upmlib-classS.metrics.json
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"upmgo"
	"upmgo/internal/exp"
	"upmgo/internal/kmig"
	"upmgo/internal/machine"
	"upmgo/internal/nas"
	"upmgo/internal/omp"
	"upmgo/internal/upm"
	"upmgo/internal/vm"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, flag.ErrHelp) {
			fmt.Fprintf(os.Stderr, "pagemap: %v\n", err)
		}
		os.Exit(1)
	}
}

// run is main without the process exit, testable against any writers.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pagemap", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "BT", "benchmark: BT, SP, CG, MG, FT or LU (extension)")
	class := fs.String("class", "W", "problem class: S, W or A")
	placement := fs.String("placement", "wc", "page placement: ft, rr, rand or wc")
	upmMode := fs.String("upm", "dist", "UPMlib mode: off or dist")
	iters := fs.Int("iters", 4, "iterations to run")
	width := fs.Int("width", 96, "pages per output row")
	from := fs.String("from", "", "render this metrics series (a .metrics.json from `sweep -metrics`) instead of simulating")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
	if *from != "" {
		return renderSeries(*from, *width, stdout)
	}

	build, ok := exp.Builder(strings.ToUpper(*bench))
	if !ok {
		return fmt.Errorf("unknown benchmark %q", *bench)
	}
	var cls nas.Class
	switch strings.ToUpper(*class) {
	case "S":
		cls = nas.ClassS
	case "W":
		cls = nas.ClassW
	case "A":
		cls = nas.ClassA
	default:
		return fmt.Errorf("unknown class %q", *class)
	}
	mc := machine.DefaultConfig()
	cls.MachineTweak(&mc)
	switch *placement {
	case "ft":
		mc.Placement = vm.FirstTouch
	case "rr":
		mc.Placement = vm.RoundRobin
	case "rand":
		mc.Placement = vm.Random
	case "wc":
		mc.Placement = vm.WorstCase
	default:
		return fmt.Errorf("unknown placement %q", *placement)
	}
	switch *upmMode {
	case "off", "dist":
	default:
		return fmt.Errorf("unknown upm mode %q (want off or dist)", *upmMode)
	}
	m, err := machine.New(mc)
	if err != nil {
		return err
	}
	k := build(m, cls, 1, 42)
	kmig.Attach(m, kmig.Config{}).SetEnabled(false)
	team, err := omp.NewTeam(m, m.NumCPUs())
	if err != nil {
		return err
	}

	team.SetSerial(true)
	k.InitTouch(team)
	k.Step(team, nil)
	team.SetSerial(false)
	k.Reinit()
	m.PT.ResetAllCounters()

	var u *upm.UPM
	if *upmMode == "dist" {
		u = upm.Init(m, upm.Options{})
		for _, r := range k.HotPages() {
			u.MemRefCnt(r[0], r[1])
		}
	}

	fmt.Fprintf(stdout, "%s, %s placement, upm=%s — page homes by node (one char per page)\n\n",
		k.Name(), mc.Placement, *upmMode)
	dump(stdout, m, k, *width, "after cold start")
	for step := 1; step <= *iters; step++ {
		k.Step(team, nil)
		if u != nil && (step == 1 || (u.Active() && u.LastMigrations() > 0)) {
			u.MigrateMemory(team.Master())
		}
		dump(stdout, m, k, *width, fmt.Sprintf("after iteration %d", step))
	}
	fmt.Fprintf(stdout, "pages per node: %v\n", m.PT.HomeHistogram())
	return nil
}

// renderSeries prints one map per captured iteration from a metrics
// series' heatmaps: the dominant referencing node per hot page.
func renderSeries(path string, width int, stdout io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	se, err := upmgo.ReadMetricsSeries(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(se.Heat) == 0 {
		return fmt.Errorf("%s carries no heatmaps — capture with `sweep -metrics dir` or MetricsOptions{Heatmap: true}", path)
	}
	cell := se.Cell
	if cell == "" {
		cell = path
	}
	fmt.Fprintf(stdout, "%s — dominant referencing node per page (one char per page)\n\n", cell)
	for _, h := range se.Heat {
		fmt.Fprintf(stdout, "after iteration %d:\n", h.Step)
		var sb strings.Builder
		for p := 0; p < h.Pages; p++ {
			row := h.Counts[p*h.Nodes : (p+1)*h.Nodes]
			best, bestN := uint32(0), -1
			for n, v := range row {
				if v > best {
					best, bestN = v, n
				}
			}
			if bestN < 0 {
				sb.WriteByte('.')
			} else {
				sb.WriteByte(byte('0' + bestN%10))
			}
			if (p+1)%width == 0 {
				sb.WriteByte('\n')
			}
		}
		out := sb.String()
		if !strings.HasSuffix(out, "\n") {
			out += "\n"
		}
		fmt.Fprintln(stdout, out)
	}
	return nil
}

func dump(w io.Writer, m *machine.Machine, k nas.Kernel, width int, label string) {
	fmt.Fprintln(w, label+":")
	var sb strings.Builder
	col := 0
	for _, r := range k.HotPages() {
		for vpn := r[0]; vpn < r[1]; vpn++ {
			switch {
			case m.PT.Frozen(vpn):
				sb.WriteByte('!')
			case m.PT.HasReplicas(vpn):
				sb.WriteByte('*')
			default:
				h := m.PT.Home(vpn)
				if h < 0 {
					sb.WriteByte('.')
				} else {
					sb.WriteByte(byte('0' + h%10))
				}
			}
			col++
			if col%width == 0 {
				sb.WriteByte('\n')
			}
		}
	}
	out := sb.String()
	if !strings.HasSuffix(out, "\n") {
		out += "\n"
	}
	fmt.Fprintln(w, out)
}

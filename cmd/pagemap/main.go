// Command pagemap runs a NAS benchmark and prints, after selected
// iterations, where every hot page lives — a text heatmap of the data
// distribution that page placement and the migration engines produce.
// Each character is one page; its symbol is the node id (0-7) holding the
// page, '*' marks pages with read replicas, '!' frozen pages.
//
// Example — watch UPMlib turn a worst-case placement into a block
// distribution after the first iteration:
//
//	pagemap -bench BT -placement wc -upm dist
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"upmgo"
	"upmgo/internal/exp"
	"upmgo/internal/kmig"
	"upmgo/internal/machine"
	"upmgo/internal/nas"
	"upmgo/internal/omp"
	"upmgo/internal/upm"
	"upmgo/internal/vm"
)

func main() {
	bench := flag.String("bench", "BT", "benchmark: BT, SP, CG, MG, FT or LU (extension)")
	placement := flag.String("placement", "wc", "page placement: ft, rr, rand or wc")
	upmMode := flag.String("upm", "dist", "UPMlib mode: off or dist")
	iters := flag.Int("iters", 4, "iterations to run")
	width := flag.Int("width", 96, "pages per output row")
	flag.Parse()

	build, ok := exp.Builder(strings.ToUpper(*bench))
	if !ok {
		fatal("unknown benchmark %q", *bench)
	}
	mc := machine.DefaultConfig()
	nas.ClassW.MachineTweak(&mc)
	switch *placement {
	case "ft":
		mc.Placement = vm.FirstTouch
	case "rr":
		mc.Placement = vm.RoundRobin
	case "rand":
		mc.Placement = vm.Random
	case "wc":
		mc.Placement = vm.WorstCase
	default:
		fatal("unknown placement %q", *placement)
	}
	m, err := machine.New(mc)
	if err != nil {
		fatal("%v", err)
	}
	k := build(m, nas.ClassW, 1, 42)
	kmig.Attach(m, kmig.Config{}).SetEnabled(false)
	team, err := omp.NewTeam(m, m.NumCPUs())
	if err != nil {
		fatal("%v", err)
	}

	team.SetSerial(true)
	k.InitTouch(team)
	k.Step(team, nil)
	team.SetSerial(false)
	k.Reinit()
	m.PT.ResetAllCounters()

	var u *upm.UPM
	if *upmMode == "dist" {
		u = upm.Init(m, upm.Options{})
		for _, r := range k.HotPages() {
			u.MemRefCnt(r[0], r[1])
		}
	}

	fmt.Printf("%s, %s placement, upm=%s — page homes by node (one char per page)\n\n",
		k.Name(), mc.Placement, *upmMode)
	dump(m, k, *width, "after cold start")
	for step := 1; step <= *iters; step++ {
		k.Step(team, nil)
		if u != nil && (step == 1 || (u.Active() && u.LastMigrations() > 0)) {
			u.MigrateMemory(team.Master())
		}
		dump(m, k, *width, fmt.Sprintf("after iteration %d", step))
	}
	hist := m.PT.HomeHistogram()
	fmt.Printf("pages per node: %v\n", hist)
	_ = upmgo.ClassW // keep the public facade linked for documentation purposes
}

func dump(m *machine.Machine, k nas.Kernel, width int, label string) {
	fmt.Println(label + ":")
	var sb strings.Builder
	col := 0
	for _, r := range k.HotPages() {
		for vpn := r[0]; vpn < r[1]; vpn++ {
			switch {
			case m.PT.Frozen(vpn):
				sb.WriteByte('!')
			case m.PT.HasReplicas(vpn):
				sb.WriteByte('*')
			default:
				h := m.PT.Home(vpn)
				if h < 0 {
					sb.WriteByte('.')
				} else {
					sb.WriteByte(byte('0' + h%10))
				}
			}
			col++
			if col%width == 0 {
				sb.WriteByte('\n')
			}
		}
	}
	out := sb.String()
	if !strings.HasSuffix(out, "\n") {
		out += "\n"
	}
	fmt.Println(out)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pagemap: "+format+"\n", args...)
	os.Exit(1)
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"upmgo"
)

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-nope"},
		{"-bench", "UA"},
		{"-class", "Q"},
		{"-placement", "best"},
		{"-upm", "sometimes"},
		{"stray"},
		{"-from", "/does/not/exist.json"},
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if err := run(args, &out, &errw); err == nil {
			t.Errorf("run(%v) succeeded, want an error", args)
		}
	}
}

// TestRunSimulated drives the live-simulation path on the fast class and
// checks the map's shape: a cold-start dump, one dump per iteration, the
// closing histogram, and only legal page symbols.
func TestRunSimulated(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-bench", "CG", "-class", "S", "-placement", "wc", "-upm", "dist",
		"-iters", "3", "-width", "32"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"wc placement, upm=dist",
		"after cold start:",
		"after iteration 1:",
		"after iteration 3:",
		"pages per node:",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output lacks %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "after iteration 4:") {
		t.Error("ran more iterations than -iters asked for")
	}
	// Page rows hold only node digits, replicas, frozen or unmapped marks.
	inMap := false
	for _, line := range strings.Split(text, "\n") {
		switch {
		case strings.HasSuffix(line, ":"):
			inMap = true
		case line == "" || strings.HasPrefix(line, "pages per node"):
			inMap = false
		case inMap:
			if rest := strings.Trim(line, "01234567.*!"); rest != "" {
				t.Errorf("map row holds foreign characters %q: %s", rest, line)
			}
		}
	}
	// UPMlib moved the worst-case pages: some page left its initial home.
	if !strings.Contains(text, "after iteration 1:") {
		t.Fatal("no iteration dump to compare")
	}
}

// TestRunFromSeries renders a captured metrics series instead of
// simulating: one dominant-node map per heatmap, with the cell name in
// the header.
func TestRunFromSeries(t *testing.T) {
	s := upmgo.NewMetricsSampler(upmgo.MetricsOptions{Heatmap: true, Cell: "cg-wc-test"})
	cfg := upmgo.NASConfig{
		Class:     upmgo.ClassS,
		Placement: upmgo.WorstCase,
		UPM:       upmgo.UPMDistribute,
		Threads:   1,
		Metrics:   s,
	}
	res, err := upmgo.RunNAS("CG", cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cg.metrics.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Series().WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out, errw bytes.Buffer
	if err := run([]string{"-from", path, "-width", "8"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "cg-wc-test — dominant referencing node") {
		t.Errorf("header lacks the cell name:\n%s", text)
	}
	if got := strings.Count(text, "after iteration "); got != len(res.IterPS) {
		t.Errorf("rendered %d maps, want one per iteration (%d)", got, len(res.IterPS))
	}
	if !strings.ContainsAny(text, "01234567") {
		t.Errorf("no dominant node rendered anywhere:\n%s", text)
	}

	// A series captured without heatmaps is an explicit error.
	empty := upmgo.NewMetricsSampler(upmgo.MetricsOptions{})
	cfg.Metrics = empty
	if _, err := upmgo.RunNAS("CG", cfg); err != nil {
		t.Fatal(err)
	}
	bare := filepath.Join(t.TempDir(), "bare.metrics.json")
	bf, err := os.Create(bare)
	if err != nil {
		t.Fatal(err)
	}
	if err := empty.Series().WriteJSON(bf); err != nil {
		t.Fatal(err)
	}
	bf.Close()
	if err := run([]string{"-from", bare}, &out, &errw); err == nil || !strings.Contains(err.Error(), "no heatmaps") {
		t.Errorf("heatmap-less series: got %v, want a no-heatmaps error", err)
	}
}

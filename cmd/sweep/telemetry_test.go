package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"upmgo"
)

// TestRunTelemetryByteIdentity is the CLI-level acceptance check for the
// telemetry layer's bit-identity discipline: a sweep with -report and
// -log enabled must produce byte-identical simulated stdout and store
// records to a run without them, while the report file and the
// structured log carry the host-side story.
func TestRunTelemetryByteIdentity(t *testing.T) {
	dir := t.TempDir()
	store1 := filepath.Join(dir, "s1")
	store2 := filepath.Join(dir, "s2")
	rpt := filepath.Join(dir, "report.json")
	base := []string{"-all", "-class", "S", "-threads", "1", "-quiet"}

	var plain, telem, errw bytes.Buffer
	if err := run(append(base, "-store", store1), &plain, &errw); err != nil {
		t.Fatal(err)
	}
	errw.Reset()
	if err := run(append(base, "-store", store2, "-report", rpt, "-log", "json"), &telem, &errw); err != nil {
		t.Fatal(err)
	}
	if plain.String() != telem.String() {
		t.Error("sweep -all stdout differs with -report/-log enabled")
	}

	// Store records: byte-identical across the plain and telemetry runs.
	names, err := filepath.Glob(filepath.Join(store1, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("plain run stored no records")
	}
	for _, name := range names {
		a, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(store2, filepath.Base(name)))
		if err != nil {
			t.Fatalf("record missing from the telemetry run's store: %v", err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("record %s differs with telemetry enabled", filepath.Base(name))
		}
	}

	// The structured log carries per-cell completions and the final
	// sweep summary as JSON slog lines.
	logText := errw.String()
	for _, want := range []string{`"msg":"cell"`, `"kind":"full_sim"`, `"virtual_s":`, `"msg":"sweep"`} {
		if !strings.Contains(logText, want) {
			t.Errorf("-log json stderr lacks %q", want)
		}
	}
	if !strings.Contains(logText, "report written to") {
		t.Error("stderr does not announce the report file")
	}

	// The report file loads back as a SweepReport with the host-time
	// story: every finished cell counted, stages attributed, the
	// slowest cells ranked.
	blob, err := os.ReadFile(rpt)
	if err != nil {
		t.Fatal(err)
	}
	var sr upmgo.SweepReport
	if err := json.Unmarshal(blob, &sr); err != nil {
		t.Fatalf("report is not a SweepReport: %v", err)
	}
	if sr.Cells < 66 {
		t.Errorf("report counts %d cell runs, want at least the 66 unique cells", sr.Cells)
	}
	if sr.HostSeconds <= 0 || sr.WallSeconds <= 0 {
		t.Errorf("report lacks host/wall time: host=%v wall=%v", sr.HostSeconds, sr.WallSeconds)
	}
	if sr.ByKind[upmgo.FastPathFullSim] == 0 {
		t.Errorf("report kinds lack full_sim cells: %v", sr.ByKind)
	}
	if sr.Stages.TimedLoop <= 0 {
		t.Errorf("report stages lack timed-loop seconds: %+v", sr.Stages)
	}
	if len(sr.Slowest) != 5 {
		t.Errorf("report ranks %d slowest cells, want 5", len(sr.Slowest))
	}
	if a := sr.Attributed(); a <= 0 || a > 1 {
		t.Errorf("stage attribution %v outside (0, 1]", a)
	}
}

// TestRunProgressETA: the live progress line shows batch-elapsed time
// and an ETA derived from completed cells' host durations.
func TestRunProgressETA(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-fig", "1", "-class", "S", "-benches", "FT", "-threads", "1"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	text := errw.String()
	if !strings.Contains(text, " eta ") {
		t.Errorf("progress line lacks an ETA:\n%s", text)
	}
	if !strings.Contains(text, "[8/8]") {
		t.Errorf("progress line never reached the batch total:\n%s", text)
	}
}

// TestRunTelemetryFlagValidation: a bad -log format or an unwritable
// -report path fails up front, named after its flag.
func TestRunTelemetryFlagValidation(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-table", "1", "-quiet", "-log", "yaml"}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "-log") {
		t.Errorf("-log yaml: err = %v, want it named after the flag", err)
	}
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "report.json")
	out.Reset()
	err = run([]string{"-table", "1", "-quiet", "-report", bad}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "-report") {
		t.Errorf("unwritable -report: err = %v, want it named after the flag", err)
	}
}

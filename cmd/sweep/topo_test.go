package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunTopoBitIdentity is the CLI-level acceptance check for the
// topology refactor: the full `sweep -all` pipeline with the Origin2000
// re-specified as a cube-shaped Hierarchy (-topo cube:2x2x2, the class-S
// 4-node machine) must be indistinguishable from the legacy hypercube
// run — byte-identical stdout AND byte-identical store records under the
// same addresses, since a cube-equivalent shape canonicalises out of the
// fingerprint. -threads 1 pins exact reproducibility. CI runs this under
// -race alongside internal/nas's TestHierarchyBitIdentity.
func TestRunTopoBitIdentity(t *testing.T) {
	dir := t.TempDir()
	cubeStore := filepath.Join(dir, "cube")
	hierStore := filepath.Join(dir, "hier")
	var cube, hier, errw bytes.Buffer
	base := []string{"-all", "-class", "S", "-threads", "1", "-quiet"}
	if err := run(append(base, "-store", cubeStore), &cube, &errw); err != nil {
		t.Fatal(err)
	}
	errw.Reset()
	if err := run(append(base, "-store", hierStore, "-topo", "cube:2x2x2"), &hier, &errw); err != nil {
		t.Fatal(err)
	}
	if cube.String() != hier.String() {
		t.Error("sweep -all stdout differs between the hypercube and the cube-shaped hierarchy")
	}

	names, err := filepath.Glob(filepath.Join(cubeStore, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("legacy run stored no records")
	}
	hierNames, err := filepath.Glob(filepath.Join(hierStore, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(hierNames) != len(names) {
		t.Fatalf("stores diverge: %d legacy records, %d hierarchy records", len(names), len(hierNames))
	}
	for _, name := range names {
		a, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(hierStore, filepath.Base(name)))
		if err != nil {
			t.Fatalf("hierarchy run missed a record the legacy run stored: %v", err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("record %s differs between topologies", filepath.Base(name))
		}
	}
}

// TestRunTopoScale drives the 64-CPU scaling sweep end to end through
// the CLI: 12 placement×engine cells on the hier64 machine, rendered
// with the @shape-suffixed labels.
func TestRunTopoScale(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-toposcale", "-topo", "hier64", "-class", "S", "-benches", "CG", "-quiet"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "Topology scaling.") {
		t.Errorf("stdout lacks the sweep title:\n%s", text)
	}
	for _, want := range []string{"ft-IRIX@4x2x8", "wc-upmlib@4x2x8"} {
		if !strings.Contains(text, want) {
			t.Errorf("stdout lacks cell %q:\n%s", want, text)
		}
	}
	if !strings.Contains(errw.String(), "12 cells simulated") {
		t.Errorf("summary is not 12 cells:\n%s", errw.String())
	}
}

// TestRunTopoRejectsBadShape: an unparseable -topo fails up front,
// before any simulation.
func TestRunTopoRejectsBadShape(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-fig", "1", "-topo", "5q"}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "-topo") {
		t.Errorf("got %v, want a -topo parse error", err)
	}
}

// TestRunFigureWithTopo: an ordinary figure honours -topo, labelling
// every cell with the shape.
func TestRunFigureWithTopo(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-fig", "1", "-topo", "hier64", "-class", "S", "-benches", "CG", "-quiet"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ft-IRIX@4x2x8") {
		t.Errorf("figure cells not on the hier64 machine:\n%s", out.String())
	}
}

// Command sweep regenerates the paper's tables and figures on the
// simulated machine and prints them as text tables with ASCII bars.
//
// Cells run concurrently on a bounded host worker pool (-jobs) and are
// memoized across figures, so `sweep -all` simulates each unique
// (benchmark, config) cell exactly once — Figure 1 is a subset of
// Figure 4, and Table 2 reuses Figure 4's UPMlib cells. Output order is
// deterministic regardless of completion order. Ctrl-C cancels the
// sweep between cells.
//
// Examples:
//
//	sweep -table 1                  # memory hierarchy latencies
//	sweep -fig 1 -class W           # placement x kernel migration
//	sweep -fig 4 -benches BT,CG     # + UPMlib, selected benchmarks
//	sweep -table 2                  # steady-state slowdown statistics
//	sweep -fig 5                    # record-replay on BT and SP
//	sweep -fig 6                    # record-replay on the scaled BT
//	sweep -all -jobs 8              # everything (EXPERIMENTS.md input)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"time"

	"upmgo"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate: 1, 4, 5 or 6")
	table := flag.Int("table", 0, "table to regenerate: 1 or 2")
	all := flag.Bool("all", false, "regenerate every table and figure")
	class := flag.String("class", "W", "problem class: S, W or A")
	benches := flag.String("benches", "", "comma-separated benchmark subset (default: all)")
	seed := flag.Uint64("seed", 42, "workload seed")
	iters := flag.Int("iters", 0, "override iteration count (0 = class default)")
	jobs := flag.Int("jobs", 0, "concurrent cell simulations (0 = GOMAXPROCS)")
	quiet := flag.Bool("quiet", false, "suppress the live progress line on stderr")
	csvOut := flag.Bool("csv", false, "emit figure 1/4 data as CSV instead of bars")
	flag.Parse()
	csvMode = *csvOut

	o := upmgo.SweepOptions{Seed: *seed, Iterations: *iters}
	switch strings.ToUpper(*class) {
	case "S":
		o.Class = upmgo.ClassS
	case "W":
		o.Class = upmgo.ClassW
	case "A":
		o.Class = upmgo.ClassA
	default:
		fatal("unknown class %q", *class)
	}
	if *benches != "" {
		o.Benches = strings.Split(strings.ToUpper(*benches), ",")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cache := upmgo.NewSweepCache()
	r := upmgo.SweepRunner{Jobs: *jobs, Cache: cache}
	if !*quiet {
		r.OnEvent = progressLine
	}

	t0 := time.Now()
	switch {
	case *all:
		runTable1()
		runFigure(ctx, r, 1, o)
		runFigure(ctx, r, 4, o)
		runTable2(ctx, r, o)
		runFigure(ctx, r, 5, o)
		runFigure(ctx, r, 6, o)
	case *table == 1:
		runTable1()
	case *table == 2:
		runTable2(ctx, r, o)
	case *fig != 0:
		runFigure(ctx, r, *fig, o)
	default:
		flag.Usage()
		os.Exit(2)
	}
	njobs := *jobs
	if njobs <= 0 {
		njobs = runtime.GOMAXPROCS(0)
	}
	st := cache.Stats()
	fmt.Fprintf(os.Stderr, "sweep: %d cells simulated, %d recalled from cache, done in %s (host time, -jobs %d)\n",
		st.Misses, st.Hits, time.Since(t0).Round(time.Millisecond), njobs)
}

// progressLine renders finished cells as one live stderr line. The
// runner serializes OnEvent calls, so the package-level counter is safe.
var progressDone int

func progressLine(ev upmgo.SweepEvent) {
	if !ev.Done {
		return
	}
	progressDone++
	src := "sim"
	if ev.CacheHit {
		src = "hit"
	}
	line := fmt.Sprintf("[%d/%d] %s %-12s %8.4fs %s %s",
		progressDone, ev.Total, ev.Spec.Bench, ev.Spec.Config.Label(),
		ev.VirtualS, src, ev.Host.Round(time.Millisecond))
	fmt.Fprintf(os.Stderr, "\r%-78s", line)
	if progressDone == ev.Total {
		// Batch complete: clear the line so the next figure starts clean.
		progressDone = 0
		fmt.Fprintf(os.Stderr, "\r%78s\r", "")
	}
}

func runTable1() {
	if err := upmgo.WriteTable1(os.Stdout); err != nil {
		fatal("%v", err)
	}
	fmt.Println()
}

func runFigure(ctx context.Context, r upmgo.SweepRunner, fig int, o upmgo.SweepOptions) {
	switch fig {
	case 1, 4:
		var cells []upmgo.ExperimentCell
		var err error
		if fig == 1 {
			cells, err = r.Figure1(ctx, o)
		} else {
			cells, err = r.Figure4(ctx, o)
		}
		if err != nil {
			fatal("figure %d: %v", fig, err)
		}
		if csvMode {
			upmgo.WriteCellsCSV(os.Stdout, cells)
			return
		}
		title := fmt.Sprintf("Figure %d. NAS benchmarks, Class %s, execution time under the four page", fig, o.Class)
		sub := "placement schemes"
		if fig == 1 {
			sub += " with and without the IRIX-style kernel migration engine."
		} else {
			sub += ", with kernel migration, and with UPMlib."
		}
		writeCells(title+"\n"+sub, cells)
		writeSummary(cells)
	case 5, 6:
		var cells []upmgo.Figure5Cell
		var err error
		if fig == 5 {
			cells, err = r.Figure5(ctx, o)
		} else {
			cells, err = r.Figure6(ctx, o)
		}
		if err != nil {
			fatal("figure %d: %v", fig, err)
		}
		title := "Figure 5. Record-replay data redistribution on BT and SP (ft placement)."
		if fig == 6 {
			title = "Figure 6. Record-replay on the synthetically scaled BT (each phase x4)."
		}
		writeFigure5(title, cells)
	default:
		fatal("no figure %d in the paper's evaluation", fig)
	}
	fmt.Println()
}

func runTable2(ctx context.Context, r upmgo.SweepRunner, o upmgo.SweepOptions) {
	rows, err := r.Table2(ctx, o)
	if err != nil {
		fatal("table 2: %v", err)
	}
	fmt.Println("Table 2. With UPMlib: slowdown vs first-touch over the last 75% of the")
	fmt.Println("iterations (left), and the fraction of page migrations performed by the")
	fmt.Println("first invocation (right).")
	fmt.Printf("%-6s | %8s %8s %8s | %8s %8s %8s\n", "Bench", "rr", "rand", "wc", "rr", "rand", "wc")
	for _, r := range rows {
		fmt.Printf("%-6s | %7.1f%% %7.1f%% %7.1f%% | %7.0f%% %7.0f%% %7.0f%%\n", r.Bench,
			100*r.SlowdownTail["rr"], 100*r.SlowdownTail["rand"], 100*r.SlowdownTail["wc"],
			100*r.FirstIterFrac["rr"], 100*r.FirstIterFrac["rand"], 100*r.FirstIterFrac["wc"])
	}
	fmt.Println()
}

func writeCells(title string, cells []upmgo.ExperimentCell) {
	fmt.Println(title)
	byBench := map[string][]upmgo.ExperimentCell{}
	var order []string
	for _, c := range cells {
		if _, seen := byBench[c.Bench]; !seen {
			order = append(order, c.Bench)
		}
		byBench[c.Bench] = append(byBench[c.Bench], c)
	}
	for _, b := range order {
		group := byBench[b]
		var max float64
		for _, c := range group {
			if s := c.Seconds(); s > max {
				max = s
			}
		}
		fmt.Printf("\n%s (virtual seconds, %d iterations)\n", b, len(group[0].Result.IterPS))
		for _, c := range group {
			bar := strings.Repeat("#", int(40*c.Seconds()/max+0.5))
			fmt.Printf("  %-14s %9.4f  %s\n", c.Label, c.Seconds(), bar)
		}
	}
}

func writeSummary(cells []upmgo.ExperimentCell) {
	type key struct{ bench, label string }
	times := map[key]float64{}
	labels := map[string]bool{}
	benches := map[string]bool{}
	for _, c := range cells {
		times[key{c.Bench, c.Label}] = c.Seconds()
		labels[c.Label] = true
		benches[c.Bench] = true
	}
	var names []string
	for l := range labels {
		if !strings.HasPrefix(l, "ft-") {
			names = append(names, l)
		}
	}
	sort.Strings(names)
	fmt.Println("\nMean slowdown vs the ft bar with the same engine:")
	for _, label := range names {
		suffix := label[strings.Index(label, "-"):]
		var sum float64
		var n int
		for b := range benches {
			base, ok1 := times[key{b, "ft" + suffix}]
			v, ok2 := times[key{b, label}]
			if ok1 && ok2 && base > 0 {
				sum += v/base - 1
				n++
			}
		}
		if n > 0 {
			fmt.Printf("  %-14s %+6.1f%%\n", label, 100*sum/float64(n))
		}
	}
}

func writeFigure5(title string, cells []upmgo.Figure5Cell) {
	fmt.Println(title)
	var max float64
	for _, c := range cells {
		if c.Seconds > max {
			max = c.Seconds
		}
	}
	for _, c := range cells {
		bar := strings.Repeat("#", int(40*(c.Seconds-c.OverheadS)/max+0.5))
		over := strings.Repeat("/", int(40*c.OverheadS/max+0.5))
		fmt.Printf("  %-3s %-12s %9.4fs (z phase %8.4fs, migration overhead %7.4fs, moves %5d) %s%s\n",
			c.Bench, c.Label, c.Seconds, c.PhaseS, c.OverheadS, c.Migrations, bar, over)
	}
}

// csvMode switches figure output to CSV.
var csvMode bool

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sweep: "+format+"\n", args...)
	os.Exit(1)
}

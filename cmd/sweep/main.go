// Command sweep regenerates the paper's tables and figures on the
// simulated machine and prints them as text tables with ASCII bars.
//
// Cells run concurrently on a bounded host worker pool (-jobs) and are
// memoized across figures, so `sweep -all` simulates each unique
// (benchmark, config) cell exactly once — Figure 1 is a subset of
// Figure 4, and Table 2 reuses Figure 4's UPMlib cells. Cells that do
// simulate share cold-start prefixes: the engine variants of one
// (benchmark, placement) fork clones of a single simulated cold start
// instead of repeating it (-nofork falls back to from-scratch runs; the
// results are identical either way). Output order is deterministic
// regardless of completion order. Ctrl-C cancels the sweep between
// cells.
//
// Examples:
//
//	sweep -table 1                  # memory hierarchy latencies
//	sweep -fig 1 -class W           # placement x kernel migration
//	sweep -fig 4 -benches BT,CG     # + UPMlib, selected benchmarks
//	sweep -table 2                  # steady-state slowdown statistics
//	sweep -fig 5                    # record-replay on BT and SP
//	sweep -fig 6                    # record-replay on the scaled BT
//	sweep -fig 5 -trace traces/     # + per-cell Chrome traces
//	sweep -all -steady              # fast-forward steady-state tails
//	sweep -all -jobs 8              # everything (EXPERIMENTS.md input)
//	sweep -all -cpuprofile cpu.pb   # + host CPU profile of the sweep
//	sweep -all -store results/      # persist cells; a second run recalls
//	                                # everything from disk (cmd/sweepd
//	                                # serves the same store over HTTP)
//	sweep -fig 4 -topo hier64       # Figure 4 on a 64-CPU hierarchy
//	sweep -toposcale -steady        # the Figure 4 grid at 64/128/256 CPUs
//	sweep -all -report report.json  # + host-time breakdown (traceview report)
//	sweep -all -log json -quiet     # structured per-cell completion log
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"upmgo"
)

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp), errors.Is(err, errUsage):
		os.Exit(2)
	default:
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
}

// errUsage reports an invocation that selected nothing to run.
var errUsage = errors.New("nothing selected: pass -all, -fig or -table")

// sweeper holds one invocation's output streams and rendering state, so
// run is re-entrant and testable (main used package-level variables).
type sweeper struct {
	out     io.Writer
	errw    io.Writer
	csv     bool
	done    int  // finished cells on the current progress line
	collect bool // -metrics set: keep figure 1/4 cells for locality.md
	cells   []upmgo.ExperimentCell
	// Progress-line pacing state: when the current batch started and how
	// much per-cell Host time has finished, for the elapsed/ETA readout.
	batchStart time.Time
	hostSum    time.Duration
	// reports accumulates every finished cell's host-time breakdown for
	// the -report file (nil unless -report).
	reports []*upmgo.CellReport
	// steady accumulates each unique cell's steady-state accounting for
	// the -steady footer (nil unless -steady). Cells recur across figures
	// — Figure 1 is a subset of Figure 4 — so they are keyed by their
	// memoization fingerprint to count each exactly once.
	steady map[string]upmgo.SweepEvent
}

// metricsServed is a test seam: when a -metrics-addr server is up, run
// calls it with the bound address after the sweep completes and before
// the server shuts down, so tests can scrape the live endpoint.
var metricsServed = func(addr string) {}

// run is main without the process exit: it parses args, runs the
// selected sweeps, and writes tables to stdout and progress to stderr.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig := fs.Int("fig", 0, "figure to regenerate: 1, 4, 5 or 6")
	table := fs.Int("table", 0, "table to regenerate: 1 or 2")
	all := fs.Bool("all", false, "regenerate every table and figure")
	class := fs.String("class", "W", "problem class: S, W or A")
	benches := fs.String("benches", "", "comma-separated benchmark subset (default: all)")
	seed := fs.Uint64("seed", 42, "workload seed")
	iters := fs.Int("iters", 0, "override iteration count (0 = class default)")
	jobs := fs.Int("jobs", 0, "concurrent cell simulations (0 = GOMAXPROCS)")
	quiet := fs.Bool("quiet", false, "suppress the live progress line on stderr")
	csvOut := fs.Bool("csv", false, "emit figure 1/4 data as CSV instead of bars")
	traceDir := fs.String("trace", "", "write per-cell Chrome traces and text summaries into this directory (disables memoization)")
	steady := fs.Bool("steady", false, "detect each cell's steady state and fast-forward the remaining iterations (bit-identical results, much less host time)")
	extrapolate := fs.Bool("extrapolate", true, "with -steady: extrapolate the tail once detected (false = detection-only, full simulation)")
	periodk := fs.Int("periodk", 0, "with -steady: cap the detector's orbit length (0 = default cap 8, 1 = period-one detection only)")
	campaign := fs.Bool("campaign", true, "with -steady: analytically fast-forward converging kernel-migration campaigns (false = always simulate them; results are bit-identical either way)")
	elide := fs.Bool("elide", false, "arm the resident-elision fast path: exact immediate repeats of all-hit bulk reads over hot pages replay as flat arithmetic (bit-identical results)")
	threads := fs.Int("threads", 0, "simulated team size per cell (0 = all CPUs; 1 = exactly reproducible)")
	noFork := fs.Bool("nofork", false, "simulate every cell's cold start from scratch instead of forking shared prefix snapshots (bisection aid; results are identical)")
	topo := fs.String("topo", "", "machine shape for every figure/table-2 cell: a [cube:]LxLx...xC spec (last component = CPUs per node) or preset (origin, hier64, hier128, hier256); empty = the class default machine. Table 1 always shows the default ladder; use cmd/latency -topo for others")
	topoScale := fs.Bool("toposcale", false, "run the hierarchical scaling sweep: the Figure 4 grid on the 64/128/256-CPU machine shapes (-topo narrows it to one shape)")
	cpuProfile := fs.String("cpuprofile", "", "write a host CPU profile of the sweep to this file")
	memProfile := fs.String("memprofile", "", "write a host heap profile (post-sweep) to this file")
	metricsDir := fs.String("metrics", "", "write per-cell NUMA metrics (JSON/CSV/Prometheus series, page heatmaps) and a locality.md digest into this directory (disables memoization)")
	metricsAddr := fs.String("metrics-addr", "", "serve live /metrics, /debug/vars and /debug/pprof on this address while sweeping (e.g. localhost:9090; disables memoization)")
	storeDir := fs.String("store", "", "content-addressed result store directory: recall cells earlier runs (or cmd/sweepd) persisted, persist everything newly simulated")
	reportPath := fs.String("report", "", "write a JSON sweep report (host time by stage, cells by fast-path kind, top slowest cells, why-not histogram) to this file; render it with `traceview report`")
	logFormat := fs.String("log", "off", "structured per-cell completion log to stderr: text or json (slog; off = none, the default — pairs best with -quiet)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}

	o := upmgo.SweepOptions{Seed: *seed, Iterations: *iters, Threads: *threads,
		Steady: *steady, Extrapolate: *extrapolate, PeriodK: *periodk,
		NoCampaignFF: !*campaign, ResidentElide: *elide, Topo: *topo}
	switch strings.ToUpper(*class) {
	case "S":
		o.Class = upmgo.ClassS
	case "W":
		o.Class = upmgo.ClassW
	case "A":
		o.Class = upmgo.ClassA
	default:
		return fmt.Errorf("unknown class %q", *class)
	}
	if *benches != "" {
		o.Benches = strings.Split(strings.ToUpper(*benches), ",")
	}

	if !*all && !*topoScale && *table == 0 && *fig == 0 {
		fs.Usage()
		return errUsage
	}
	if *topo != "" {
		// Fail a bad shape here, named after its flag, instead of once per
		// cell inside the pool.
		if _, err := upmgo.ParseTopoShape(*topo); err != nil {
			return fmt.Errorf("-topo: %w", err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Validate every output destination before the first cell simulates:
	// an unusable directory or profile path fails now, named after its
	// flag, instead of minutes into the sweep.
	for _, d := range []struct{ flag, dir string }{{"-trace", *traceDir}, {"-metrics", *metricsDir}} {
		if d.dir == "" {
			continue
		}
		if err := probeDir(d.dir); err != nil {
			return fmt.Errorf("%s: %w", d.flag, err)
		}
	}
	var st *upmgo.ResultStore
	if *storeDir != "" {
		var err error
		if st, err = upmgo.OpenResultStore(*storeDir); err != nil {
			return fmt.Errorf("-store: %w", err)
		}
	}
	logger, err := newLogger(*logFormat, stderr)
	if err != nil {
		return err
	}
	var reportf *os.File
	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			return fmt.Errorf("-report: %w", err)
		}
		defer f.Close()
		reportf = f
	}
	var memf *os.File
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
		defer f.Close()
		memf = f
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	s := &sweeper{out: stdout, errw: stderr, csv: *csvOut, collect: *metricsDir != ""}
	cache := upmgo.NewSweepCache()
	if st != nil {
		cache.SetStore(st)
	}
	r := upmgo.SweepRunner{Jobs: *jobs, Cache: cache, TraceDir: *traceDir, NoFork: *noFork, MetricsDir: *metricsDir}

	var reg *upmgo.MetricsRegistry
	var served string
	if *metricsAddr != "" {
		reg = upmgo.NewMetricsRegistry()
		upmgo.DescribeSweepGauges(reg)
		upmgo.PublishBuildInfo(reg)
		r.MetricsRegistry = reg
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("-metrics-addr: %w", err)
		}
		served = ln.Addr().String()
		srv := &http.Server{Handler: upmgo.MetricsHandler(reg)}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Fprintf(stderr, "sweep: serving /metrics, /debug/vars and /debug/pprof/ on http://%s/\n", served)
	}

	var handlers []func(upmgo.SweepEvent)
	if reg != nil {
		handlers = append(handlers, func(ev upmgo.SweepEvent) { upmgo.PublishSweepEvent(reg, cache, ev) })
	}
	if *steady {
		s.steady = map[string]upmgo.SweepEvent{}
		handlers = append(handlers, s.recordSteady)
	}
	if reportf != nil {
		handlers = append(handlers, func(ev upmgo.SweepEvent) {
			if ev.Done && ev.Report != nil {
				s.reports = append(s.reports, ev.Report)
			}
		})
	}
	if logger != nil {
		handlers = append(handlers, func(ev upmgo.SweepEvent) { logCell(logger, ev) })
	}
	if !*quiet {
		handlers = append(handlers, s.progressLine)
	}
	if len(handlers) == 1 {
		r.OnEvent = handlers[0]
	} else if len(handlers) > 1 {
		r.OnEvent = func(ev upmgo.SweepEvent) {
			for _, h := range handlers {
				h(ev)
			}
		}
	}

	t0 := time.Now()
	switch {
	case *all:
		err = s.runTable1()
		for _, f := range []int{1, 4} {
			if err == nil {
				err = s.runFigure(ctx, r, f, o)
			}
		}
		if err == nil {
			err = s.runTable2(ctx, r, o)
		}
		for _, f := range []int{5, 6} {
			if err == nil {
				err = s.runFigure(ctx, r, f, o)
			}
		}
		if err == nil && *topoScale {
			err = s.runTopoScale(ctx, r, o)
		}
	case *topoScale:
		err = s.runTopoScale(ctx, r, o)
	case *table == 1:
		err = s.runTable1()
	case *table == 2:
		err = s.runTable2(ctx, r, o)
	default:
		err = s.runFigure(ctx, r, *fig, o)
	}
	if err != nil {
		return err
	}
	njobs := *jobs
	if njobs <= 0 {
		njobs = runtime.GOMAXPROCS(0)
	}
	cs := cache.Stats()
	if *storeDir != "" {
		fmt.Fprintf(stderr, "sweep: %d cells simulated (%d forked from %d prefix snapshots), %d recalled from cache, %d from store (%d newly stored), done in %s (host time, -jobs %d)\n",
			cs.Misses, cs.Forked, cs.Prefixes, cs.Hits, cs.DiskHits, cs.StorePuts, time.Since(t0).Round(time.Millisecond), njobs)
		if cs.StoreErrors > 0 {
			fmt.Fprintf(stderr, "sweep: warning: %d store errors (last: %v); affected cells re-simulated or left unpersisted\n", cs.StoreErrors, cs.StoreErr)
		}
	} else {
		fmt.Fprintf(stderr, "sweep: %d cells simulated (%d forked from %d prefix snapshots), %d recalled from cache, done in %s (host time, -jobs %d)\n",
			cs.Misses, cs.Forked, cs.Prefixes, cs.Hits, time.Since(t0).Round(time.Millisecond), njobs)
	}
	if line := s.steadySummary(); line != "" {
		fmt.Fprintln(stderr, line)
	}
	if logger != nil {
		logger.Info("sweep", "simulated", cs.Misses, "recalled", cs.Hits,
			"from_store", cs.DiskHits, "elapsed", time.Since(t0), "jobs", njobs)
	}
	if reportf != nil {
		if err := s.writeReport(reportf, time.Since(t0)); err != nil {
			return fmt.Errorf("-report: %w", err)
		}
		fmt.Fprintf(stderr, "sweep: report written to %s (%d cell runs)\n", *reportPath, len(s.reports))
	}
	if *metricsDir != "" && len(s.cells) > 0 {
		if err := s.writeLocality(*metricsDir); err != nil {
			return fmt.Errorf("-metrics: %w", err)
		}
	}
	if reg != nil {
		metricsServed(served)
	}
	if memf != nil {
		runtime.GC() // settle allocations so the heap profile reflects live state
		if err := pprof.WriteHeapProfile(memf); err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
	}
	return nil
}

// newLogger builds the optional structured sweep log: slog to w in the
// chosen format, nil when format is "off" (the default — unlike sweepd,
// the CLI's human-readable progress line is the primary surface).
func newLogger(format string, w io.Writer) (*slog.Logger, error) {
	switch format {
	case "off":
		return nil, nil
	case "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	default:
		return nil, fmt.Errorf("-log: unknown format %q (want off, text or json)", format)
	}
}

// logCell emits one structured line per finished cell: identity, host
// and virtual cost, provenance, fast-path kind and (when the steady
// detector gave up) the typed why-not reason.
func logCell(logger *slog.Logger, ev upmgo.SweepEvent) {
	if !ev.Done {
		return
	}
	args := []any{"bench", ev.Spec.Bench, "label", ev.Spec.Config.Label(),
		"host", ev.Host, "virtual_s", ev.VirtualS}
	if rep := ev.Report; rep != nil {
		args = append(args, "source", rep.Source, "kind", string(rep.Kind))
		if w := rep.FastPath.WhyNot; w != nil {
			args = append(args, "why_not", string(w.Reason))
		}
	}
	if ev.Err != nil {
		logger.Error("cell", append(args, "err", ev.Err)...)
		return
	}
	logger.Info("cell", args...)
}

// writeReport aggregates the collected per-cell reports into one
// SweepReport and writes it to f as indented JSON.
func (s *sweeper) writeReport(f *os.File, wall time.Duration) error {
	sr := upmgo.BuildSweepReport(s.reports, 5)
	sr.WallSeconds = wall.Seconds()
	blob, err := json.MarshalIndent(sr, "", "  ")
	if err != nil {
		return err
	}
	if _, err := f.Write(append(blob, '\n')); err != nil {
		return err
	}
	return f.Close()
}

// probeDir creates dir if needed and proves it writable with a
// create-and-remove round trip, so a doomed output flag fails before
// the sweep instead of after it.
func probeDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return err
	}
	name := f.Name()
	f.Close()
	return os.Remove(name)
}

// writeLocality renders the accumulated figure 1/4 cells' local:remote
// access ratios into <dir>/locality.md (the EXPERIMENTS.md digest).
func (s *sweeper) writeLocality(dir string) error {
	f, err := os.Create(filepath.Join(dir, "locality.md"))
	if err != nil {
		return err
	}
	if err := upmgo.WriteLocalityTable(f, s.cells); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// recordSteady keeps one finished event per unique cell (keyed by the
// memoization fingerprint, falling back to bench+label for unmemoizable
// configs) so the -steady footer counts each cell exactly once no matter
// how many figures recalled it.
func (s *sweeper) recordSteady(ev upmgo.SweepEvent) {
	if !ev.Done || ev.Err != nil {
		return
	}
	k, ok := ev.Spec.Key()
	if !ok {
		k = ev.Spec.Bench + "\x00" + ev.Spec.Config.Label()
	}
	s.steady[k] = ev
}

// steadySummary renders the -steady footer: how many unique cells
// fast-forwarded, split by mechanism (a cell that drains a campaign and
// then extrapolates counts under both), and the median iteration at which
// detection fired. Empty when -steady was off or nothing finished.
func (s *sweeper) steadySummary() string {
	if len(s.steady) == 0 {
		return ""
	}
	var p1, pk, camp, ffwd int
	var ats []int
	for _, ev := range s.steady {
		if ev.SteadyAt > 0 {
			ats = append(ats, ev.SteadyAt)
		}
		ff := false
		if ev.ExtrapolatedIters > 0 {
			ff = true
			if ev.SteadyPeriod > 1 {
				pk++
			} else {
				p1++
			}
		}
		if ev.CampaignIters > 0 {
			ff = true
			camp++
		}
		if ff {
			ffwd++
		}
	}
	line := fmt.Sprintf("sweep: %d of %d cells extrapolated (period-1: %d, period-k: %d, campaign: %d)",
		ffwd, len(s.steady), p1, pk, camp)
	if len(ats) > 0 {
		sort.Ints(ats)
		line += fmt.Sprintf(", median SteadyAt=%d", ats[len(ats)/2])
	}
	return line
}

// progressLine renders finished cells as one live stderr line, with the
// batch's elapsed host time and an ETA derived from the completed
// cells' Host durations (their mean, scaled by the concurrency the
// batch has actually achieved so far). The runner serializes OnEvent
// calls, so the counters need no locking.
func (s *sweeper) progressLine(ev upmgo.SweepEvent) {
	if s.batchStart.IsZero() {
		s.batchStart = time.Now()
	}
	if !ev.Done {
		return
	}
	s.done++
	s.hostSum += ev.Host
	src := "sim"
	if ev.CacheHit {
		src = "hit"
	}
	elapsed := time.Since(s.batchStart)
	line := fmt.Sprintf("[%d/%d] %s %-12s %8.4fs %s %s | %s eta %s",
		s.done, ev.Total, ev.Spec.Bench, ev.Spec.Config.Label(),
		ev.VirtualS, src, ev.Host.Round(time.Millisecond),
		elapsed.Round(time.Millisecond), s.eta(elapsed, ev.Total))
	// Pad AND truncate to one fixed width: a line longer than the pad
	// width would leave residue from itself on the next, shorter repaint
	// (the flicker a long label plus a slow host time used to cause).
	if len(line) > progressWidth {
		line = line[:progressWidth]
	}
	fmt.Fprintf(s.errw, "\r%-*s", progressWidth, line)
	if s.done == ev.Total {
		// Batch complete: clear the line so the next figure starts clean.
		s.done = 0
		s.hostSum = 0
		s.batchStart = time.Time{}
		fmt.Fprintf(s.errw, "\r%*s\r", progressWidth, "")
	}
}

// eta projects the batch's remaining wall time: mean Host per finished
// cell times the cells left, divided by the observed concurrency
// (total Host time delivered per unit of wall time, floored at 1 so a
// cache-hot batch never divides by ~0).
func (s *sweeper) eta(elapsed time.Duration, total int) time.Duration {
	if s.done == 0 || elapsed <= 0 {
		return 0
	}
	mean := float64(s.hostSum) / float64(s.done)
	conc := float64(s.hostSum) / float64(elapsed)
	if conc < 1 {
		conc = 1
	}
	return time.Duration(float64(total-s.done) * mean / conc).Round(time.Millisecond)
}

// progressWidth is the fixed repaint width of the live progress line:
// every repaint pads or truncates to exactly this many columns, so
// successive lines fully overwrite each other.
const progressWidth = 78

func (s *sweeper) runTable1() error {
	if err := upmgo.WriteTable1(s.out); err != nil {
		return err
	}
	fmt.Fprintln(s.out)
	return nil
}

func (s *sweeper) runFigure(ctx context.Context, r upmgo.SweepRunner, fig int, o upmgo.SweepOptions) error {
	switch fig {
	case 1, 4:
		var cells []upmgo.ExperimentCell
		var err error
		if fig == 1 {
			cells, err = r.Figure1(ctx, o)
		} else {
			cells, err = r.Figure4(ctx, o)
		}
		if err != nil {
			return fmt.Errorf("figure %d: %w", fig, err)
		}
		if s.collect {
			s.cells = append(s.cells, cells...)
		}
		if s.csv {
			upmgo.WriteCellsCSV(s.out, cells)
			return nil
		}
		title := fmt.Sprintf("Figure %d. NAS benchmarks, Class %s, execution time under the four page", fig, o.Class)
		sub := "placement schemes"
		if fig == 1 {
			sub += " with and without the IRIX-style kernel migration engine."
		} else {
			sub += ", with kernel migration, and with UPMlib."
		}
		s.writeCells(title+"\n"+sub, cells)
		s.writeSummary(cells)
	case 5, 6:
		var cells []upmgo.Figure5Cell
		var err error
		if fig == 5 {
			cells, err = r.Figure5(ctx, o)
		} else {
			cells, err = r.Figure6(ctx, o)
		}
		if err != nil {
			return fmt.Errorf("figure %d: %w", fig, err)
		}
		title := "Figure 5. Record-replay data redistribution on BT and SP (ft placement)."
		if fig == 6 {
			title = "Figure 6. Record-replay on the synthetically scaled BT (each phase x4)."
		}
		s.writeFigure5(title, cells)
	default:
		return fmt.Errorf("no figure %d in the paper's evaluation", fig)
	}
	fmt.Fprintln(s.out)
	return nil
}

// runTopoScale renders the hierarchical scaling sweep: the Figure 4
// placement×engine grid on each TopoScaleShapes machine (or just -topo's
// shape), labels suffixed with "@shape".
func (s *sweeper) runTopoScale(ctx context.Context, r upmgo.SweepRunner, o upmgo.SweepOptions) error {
	res, err := r.Sweep(ctx, upmgo.SweepRequest{Kind: upmgo.KindTopoScale, Options: o})
	if err != nil {
		return fmt.Errorf("toposcale: %w", err)
	}
	cells := res.Cells
	if s.collect {
		s.cells = append(s.cells, cells...)
	}
	if s.csv {
		upmgo.WriteCellsCSV(s.out, cells)
		return nil
	}
	shapes := strings.Join(upmgo.TopoScaleShapes, ", ")
	if o.Topo != "" {
		shapes = o.Topo
	}
	title := fmt.Sprintf("Topology scaling. NAS benchmarks, Class %s, the Figure 4 grid on", o.Class)
	sub := fmt.Sprintf("hierarchical machines (%s).", shapes)
	s.writeCells(title+"\n"+sub, cells)
	s.writeSummary(cells)
	fmt.Fprintln(s.out)
	return nil
}

func (s *sweeper) runTable2(ctx context.Context, r upmgo.SweepRunner, o upmgo.SweepOptions) error {
	rows, err := r.Table2(ctx, o)
	if err != nil {
		return fmt.Errorf("table 2: %w", err)
	}
	fmt.Fprintln(s.out, "Table 2. With UPMlib: slowdown vs first-touch over the last 75% of the")
	fmt.Fprintln(s.out, "iterations (left), and the fraction of page migrations performed by the")
	fmt.Fprintln(s.out, "first invocation (right).")
	fmt.Fprintf(s.out, "%-6s | %8s %8s %8s | %8s %8s %8s\n", "Bench", "rr", "rand", "wc", "rr", "rand", "wc")
	for _, r := range rows {
		fmt.Fprintf(s.out, "%-6s | %7.1f%% %7.1f%% %7.1f%% | %7.0f%% %7.0f%% %7.0f%%\n", r.Bench,
			100*r.SlowdownTail["rr"], 100*r.SlowdownTail["rand"], 100*r.SlowdownTail["wc"],
			100*r.FirstIterFrac["rr"], 100*r.FirstIterFrac["rand"], 100*r.FirstIterFrac["wc"])
	}
	fmt.Fprintln(s.out)
	return nil
}

func (s *sweeper) writeCells(title string, cells []upmgo.ExperimentCell) {
	fmt.Fprintln(s.out, title)
	byBench := map[string][]upmgo.ExperimentCell{}
	var order []string
	for _, c := range cells {
		if _, seen := byBench[c.Bench]; !seen {
			order = append(order, c.Bench)
		}
		byBench[c.Bench] = append(byBench[c.Bench], c)
	}
	for _, b := range order {
		group := byBench[b]
		var max float64
		for _, c := range group {
			if sec := c.Seconds(); sec > max {
				max = sec
			}
		}
		fmt.Fprintf(s.out, "\n%s (virtual seconds, %d iterations)\n", b, len(group[0].Result.IterPS))
		for _, c := range group {
			bar := strings.Repeat("#", int(40*c.Seconds()/max+0.5))
			fmt.Fprintf(s.out, "  %-14s %9.4f  %s\n", c.Label, c.Seconds(), bar)
		}
	}
}

func (s *sweeper) writeSummary(cells []upmgo.ExperimentCell) {
	type key struct{ bench, label string }
	times := map[key]float64{}
	labels := map[string]bool{}
	benches := map[string]bool{}
	for _, c := range cells {
		times[key{c.Bench, c.Label}] = c.Seconds()
		labels[c.Label] = true
		benches[c.Bench] = true
	}
	var names []string
	for l := range labels {
		if !strings.HasPrefix(l, "ft-") {
			names = append(names, l)
		}
	}
	sort.Strings(names)
	fmt.Fprintln(s.out, "\nMean slowdown vs the ft bar with the same engine:")
	for _, label := range names {
		suffix := label[strings.Index(label, "-"):]
		var sum float64
		var n int
		for b := range benches {
			base, ok1 := times[key{b, "ft" + suffix}]
			v, ok2 := times[key{b, label}]
			if ok1 && ok2 && base > 0 {
				sum += v/base - 1
				n++
			}
		}
		if n > 0 {
			fmt.Fprintf(s.out, "  %-14s %+6.1f%%\n", label, 100*sum/float64(n))
		}
	}
}

func (s *sweeper) writeFigure5(title string, cells []upmgo.Figure5Cell) {
	fmt.Fprintln(s.out, title)
	var max float64
	for _, c := range cells {
		if c.Seconds > max {
			max = c.Seconds
		}
	}
	for _, c := range cells {
		bar := strings.Repeat("#", int(40*(c.Seconds-c.OverheadS)/max+0.5))
		over := strings.Repeat("/", int(40*c.OverheadS/max+0.5))
		fmt.Fprintf(s.out, "  %-3s %-12s %9.4fs (z phase %8.4fs, migration overhead %7.4fs, moves %5d) %s%s\n",
			c.Bench, c.Label, c.Seconds, c.PhaseS, c.OverheadS, c.Migrations, bar, over)
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"upmgo"
)

func TestRunNothingSelected(t *testing.T) {
	var out, errw bytes.Buffer
	err := run(nil, &out, &errw)
	if !errors.Is(err, errUsage) {
		t.Fatalf("got %v, want errUsage", err)
	}
	if !strings.Contains(errw.String(), "Usage of sweep") {
		t.Error("usage text not printed to stderr")
	}
}

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-nope"},
		{"-fig", "1", "-class", "Q"},
		{"-fig", "3"},
		{"-fig", "1", "stray"},
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if err := run(args, &out, &errw); err == nil {
			t.Errorf("run(%v) succeeded, want an error", args)
		}
	}
}

func TestRunTable1(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-table", "1", "-quiet"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table 1.") {
		t.Errorf("stdout lacks the table header:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "cells simulated") {
		t.Error("stderr lacks the closing cache-stats line")
	}
}

// TestRunAllForkNoForkByteIdentity is the CLI-level acceptance check for
// prefix forking: `sweep -all` stdout must be byte-identical with
// sharing on (the default) and off (-nofork) at -threads 1, while the
// stderr summary shows the sharing — every simulated cell forked, ~3
// engine variants per prefix snapshot.
func TestRunAllForkNoForkByteIdentity(t *testing.T) {
	var fork, nofork, errw bytes.Buffer
	base := []string{"-all", "-class", "S", "-threads", "1", "-quiet"}
	if err := run(base, &fork, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw.String(), "66 cells simulated (66 forked from 21 prefix snapshots)") {
		t.Errorf("summary lacks the prefix-reuse report:\n%s", errw.String())
	}
	errw.Reset()
	if err := run(append(base, "-nofork"), &nofork, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw.String(), "(0 forked from 0 prefix snapshots)") {
		t.Errorf("-nofork summary still reports forking:\n%s", errw.String())
	}
	if fork.String() != nofork.String() {
		t.Error("sweep -all stdout differs between forking and -nofork")
	}
}

// TestRunStoreWarmStart is the CLI-level acceptance check for -store:
// `sweep -all -store dir` twice must produce byte-identical stdout, with
// the second run simulating nothing — every cell recalled from disk —
// and a third run into a fresh store must write byte-identical records.
func TestRunStoreWarmStart(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "results")
	var cold, warm, errw bytes.Buffer
	base := []string{"-all", "-class", "S", "-threads", "1", "-quiet", "-store", store}
	if err := run(base, &cold, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw.String(), "66 cells simulated") || !strings.Contains(errw.String(), "(66 newly stored)") {
		t.Errorf("cold summary lacks the store report:\n%s", errw.String())
	}
	errw.Reset()
	if err := run(base, &warm, &errw); err != nil {
		t.Fatal(err)
	}
	// 66 unique cells come off disk; the overlapping figure requests
	// (Figure 1 ⊂ Figure 4, Table 2 ⊆ Figure 4) still hit RAM.
	if !strings.Contains(errw.String(), "0 cells simulated (0 forked from 0 prefix snapshots), 66 recalled from cache, 66 from store (0 newly stored)") {
		t.Errorf("warm summary shows simulation:\n%s", errw.String())
	}
	if cold.String() != warm.String() {
		t.Error("sweep -all stdout differs between the cold and store-warmed run")
	}

	// Cross-directory record identity: a second store populated by an
	// independent process-equivalent run holds byte-identical files (the
	// invariant the CI smoke checks with diff -r).
	store2 := filepath.Join(dir, "results2")
	errw.Reset()
	if err := run([]string{"-all", "-class", "S", "-threads", "1", "-quiet", "-store", store2}, &cold, &errw); err != nil {
		t.Fatal(err)
	}
	names, err := filepath.Glob(filepath.Join(store, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 66 {
		t.Fatalf("store holds %d records, want 66", len(names))
	}
	for _, name := range names {
		a, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(store2, filepath.Base(name)))
		if err != nil {
			t.Fatalf("record missing from the second store: %v", err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("record %s differs between independent runs", filepath.Base(name))
		}
	}
}

// TestRunOutputDirValidation: every output flag fails up front, named,
// when its destination is unusable — before any cell simulates.
func TestRunOutputDirValidation(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(bad, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A plain file where a directory is needed fails MkdirAll regardless
	// of privilege (unlike permission bits, which root ignores).
	for _, flag := range []string{"-trace", "-metrics", "-store"} {
		var out, errw bytes.Buffer
		err := run([]string{"-fig", "1", "-class", "S", "-benches", "FT", "-quiet", flag, bad}, &out, &errw)
		if err == nil || !strings.Contains(err.Error(), flag+":") {
			t.Errorf("%s pointing at a file: err = %v, want it named after the flag", flag, err)
		}
		if out.Len() != 0 {
			t.Errorf("%s failed validation but still swept", flag)
		}
	}
	var out, errw bytes.Buffer
	err := run([]string{"-table", "1", "-quiet", "-memprofile", filepath.Join(bad, "m.prof")}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "-memprofile") {
		t.Errorf("unwritable -memprofile: %v", err)
	}
}

// TestRunProfileFlags: -cpuprofile and -memprofile must produce
// non-empty profile files alongside a normal run.
func TestRunProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	var out, errw bytes.Buffer
	args := []string{"-fig", "1", "-class", "S", "-benches", "FT", "-quiet",
		"-cpuprofile", cpu, "-memprofile", mem}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Errorf("profile not written: %v", err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", filepath.Base(path))
		}
	}
	// An unwritable profile path is an error, not a silent no-op.
	bad := filepath.Join(dir, "no", "such", "dir", "cpu.prof")
	if err := run([]string{"-table", "1", "-quiet", "-cpuprofile", bad}, &out, &errw); err == nil {
		t.Error("unwritable -cpuprofile path did not fail")
	}
}

// TestRunMetricsDir is the CLI-level acceptance check for -metrics:
// `sweep -fig 1 -metrics dir` must drop the three export formats per
// cell plus the locality.md digest, and each JSON series must load back
// with one iteration sample per timed iteration.
func TestRunMetricsDir(t *testing.T) {
	dir := t.TempDir()
	var out, errw bytes.Buffer
	args := []string{"-fig", "1", "-class", "S", "-benches", "FT", "-threads", "1",
		"-quiet", "-metrics", dir}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	series, err := filepath.Glob(filepath.Join(dir, "*.metrics.json"))
	if err != nil {
		t.Fatal(err)
	}
	// Figure 1 on one benchmark has eight cells: four placements, each
	// with and without kernel migration.
	if len(series) != 8 {
		t.Fatalf("got %d metrics series, want 8: %v", len(series), series)
	}
	for _, path := range series {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		se, err := upmgo.ReadMetricsSeries(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s does not load: %v", filepath.Base(path), err)
		}
		var iters int
		for _, sm := range se.Samples {
			if sm.Kind == "iter" {
				iters++
			}
		}
		if iters == 0 || len(se.Heat) != iters {
			t.Errorf("%s: %d iteration samples, %d heatmaps", filepath.Base(path), iters, len(se.Heat))
		}
		base := strings.TrimSuffix(path, ".metrics.json")
		for _, sib := range []string{base + ".metrics.csv", base + ".prom"} {
			if fi, err := os.Stat(sib); err != nil || fi.Size() == 0 {
				t.Errorf("%s missing or empty (%v)", filepath.Base(sib), err)
			}
		}
	}
	loc, err := os.ReadFile(filepath.Join(dir, "locality.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"| Bench | Placement |", "IRIXmig", "| FT | wc |", ":1"} {
		if !strings.Contains(string(loc), want) {
			t.Errorf("locality.md lacks %q:\n%s", want, loc)
		}
	}
}

// TestRunMetricsAddr is the CLI-level acceptance check for the live
// endpoint: while `sweep -fig 1 -metrics-addr` has its server up, a
// scrape of /metrics must return well-formed Prometheus text carrying
// both the sweep-runner gauges and the per-cell NUMA families.
func TestRunMetricsAddr(t *testing.T) {
	var body, ctype string
	old := metricsServed
	metricsServed = func(addr string) {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			t.Errorf("scrape: %v", err)
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Errorf("scrape: %v", err)
			return
		}
		body, ctype = string(b), resp.Header.Get("Content-Type")
	}
	defer func() { metricsServed = old }()

	var out, errw bytes.Buffer
	args := []string{"-fig", "1", "-class", "S", "-benches", "FT", "-threads", "1",
		"-quiet", "-metrics-addr", "127.0.0.1:0"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw.String(), "serving /metrics") {
		t.Error("stderr does not announce the metrics server")
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("scrape content type %q", ctype)
	}
	for _, want := range []string{
		"# TYPE upmgo_sweep_cells_inflight gauge",
		"upmgo_sweep_cells_inflight 0",
		`upmgo_sweep_cells_done{result="simulated"} 8`,
		"upmgo_page_residency{cell=",
		`upmgo_refs{cell=`,
		"upmgo_build_info{",
		"# TYPE upmgo_sweep_cell_host_seconds histogram",
		"upmgo_sweep_cell_host_seconds_count{",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape lacks %q:\n%s", want, body)
		}
	}
}

// TestRunFigure5Traced is the CLI-level acceptance check for -trace:
// `sweep -fig 5 -trace dir` must render the figure and drop one
// Chrome-loadable JSON plus one text summary per cell, with exact
// picosecond timestamps in args.ps and the region spans contained in the
// iteration spans.
func TestRunFigure5Traced(t *testing.T) {
	dir := t.TempDir()
	var out, errw bytes.Buffer
	args := []string{"-fig", "5", "-class", "S", "-benches", "BT", "-quiet", "-trace", dir}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 5.") {
		t.Errorf("stdout lacks the figure:\n%s", out.String())
	}
	traces, err := filepath.Glob(filepath.Join(dir, "*.trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	// Figure 5 on one benchmark has four bars: ft, ft-IRIXmig,
	// ft-upmlib, ft-recrep.
	if len(traces) != 4 {
		t.Fatalf("got %d trace files, want 4: %v", len(traces), traces)
	}
	for _, path := range traces {
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var tr struct {
			TraceEvents []struct {
				Name string         `json:"name"`
				Ph   string         `json:"ph"`
				Args map[string]any `json:"args"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(blob, &tr); err != nil {
			t.Fatalf("%s is not Chrome-loadable JSON: %v", filepath.Base(path), err)
		}
		var iterPS, regionPS, open, regionOpen int64
		iters := 0
		insideIter := false
		for _, ev := range tr.TraceEvents {
			if ev.Ph != "B" && ev.Ph != "E" {
				continue
			}
			ps, ok := ev.Args["ps"].(float64)
			if !ok {
				t.Fatalf("%s: %s record for %q lacks args.ps", filepath.Base(path), ev.Ph, ev.Name)
			}
			switch {
			case ev.Name == "iteration" && ev.Ph == "B":
				open, insideIter = int64(ps), true
			case ev.Name == "iteration" && ev.Ph == "E":
				iterPS += int64(ps) - open
				iters++
				insideIter = false
			case ev.Name != "marked_phase" && ev.Ph == "B":
				regionOpen = int64(ps)
			case ev.Name != "marked_phase" && ev.Ph == "E":
				if insideIter { // skip cold-start regions outside the loop
					regionPS += int64(ps) - regionOpen
				}
			}
		}
		if iters == 0 || iterPS <= 0 {
			t.Errorf("%s: no timed iterations in the trace", filepath.Base(path))
		}
		if regionPS > iterPS {
			t.Errorf("%s: region spans (%d ps) exceed the iteration spans (%d ps)",
				filepath.Base(path), regionPS, iterPS)
		}
		summary := strings.TrimSuffix(path, ".trace.json") + ".summary.txt"
		txt, err := os.ReadFile(summary)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(txt), "phase breakdown") {
			t.Errorf("%s lacks the phase breakdown", filepath.Base(summary))
		}
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunNothingSelected(t *testing.T) {
	var out, errw bytes.Buffer
	err := run(nil, &out, &errw)
	if !errors.Is(err, errUsage) {
		t.Fatalf("got %v, want errUsage", err)
	}
	if !strings.Contains(errw.String(), "Usage of sweep") {
		t.Error("usage text not printed to stderr")
	}
}

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-nope"},
		{"-fig", "1", "-class", "Q"},
		{"-fig", "3"},
		{"-fig", "1", "stray"},
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if err := run(args, &out, &errw); err == nil {
			t.Errorf("run(%v) succeeded, want an error", args)
		}
	}
}

func TestRunTable1(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-table", "1", "-quiet"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table 1.") {
		t.Errorf("stdout lacks the table header:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "cells simulated") {
		t.Error("stderr lacks the closing cache-stats line")
	}
}

// TestRunAllForkNoForkByteIdentity is the CLI-level acceptance check for
// prefix forking: `sweep -all` stdout must be byte-identical with
// sharing on (the default) and off (-nofork) at -threads 1, while the
// stderr summary shows the sharing — every simulated cell forked, ~3
// engine variants per prefix snapshot.
func TestRunAllForkNoForkByteIdentity(t *testing.T) {
	var fork, nofork, errw bytes.Buffer
	base := []string{"-all", "-class", "S", "-threads", "1", "-quiet"}
	if err := run(base, &fork, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw.String(), "66 cells simulated (66 forked from 21 prefix snapshots)") {
		t.Errorf("summary lacks the prefix-reuse report:\n%s", errw.String())
	}
	errw.Reset()
	if err := run(append(base, "-nofork"), &nofork, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw.String(), "(0 forked from 0 prefix snapshots)") {
		t.Errorf("-nofork summary still reports forking:\n%s", errw.String())
	}
	if fork.String() != nofork.String() {
		t.Error("sweep -all stdout differs between forking and -nofork")
	}
}

// TestRunProfileFlags: -cpuprofile and -memprofile must produce
// non-empty profile files alongside a normal run.
func TestRunProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	var out, errw bytes.Buffer
	args := []string{"-fig", "1", "-class", "S", "-benches", "FT", "-quiet",
		"-cpuprofile", cpu, "-memprofile", mem}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Errorf("profile not written: %v", err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", filepath.Base(path))
		}
	}
	// An unwritable profile path is an error, not a silent no-op.
	bad := filepath.Join(dir, "no", "such", "dir", "cpu.prof")
	if err := run([]string{"-table", "1", "-quiet", "-cpuprofile", bad}, &out, &errw); err == nil {
		t.Error("unwritable -cpuprofile path did not fail")
	}
}

// TestRunFigure5Traced is the CLI-level acceptance check for -trace:
// `sweep -fig 5 -trace dir` must render the figure and drop one
// Chrome-loadable JSON plus one text summary per cell, with exact
// picosecond timestamps in args.ps and the region spans contained in the
// iteration spans.
func TestRunFigure5Traced(t *testing.T) {
	dir := t.TempDir()
	var out, errw bytes.Buffer
	args := []string{"-fig", "5", "-class", "S", "-benches", "BT", "-quiet", "-trace", dir}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 5.") {
		t.Errorf("stdout lacks the figure:\n%s", out.String())
	}
	traces, err := filepath.Glob(filepath.Join(dir, "*.trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	// Figure 5 on one benchmark has four bars: ft, ft-IRIXmig,
	// ft-upmlib, ft-recrep.
	if len(traces) != 4 {
		t.Fatalf("got %d trace files, want 4: %v", len(traces), traces)
	}
	for _, path := range traces {
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var tr struct {
			TraceEvents []struct {
				Name string         `json:"name"`
				Ph   string         `json:"ph"`
				Args map[string]any `json:"args"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(blob, &tr); err != nil {
			t.Fatalf("%s is not Chrome-loadable JSON: %v", filepath.Base(path), err)
		}
		var iterPS, regionPS, open, regionOpen int64
		iters := 0
		insideIter := false
		for _, ev := range tr.TraceEvents {
			if ev.Ph != "B" && ev.Ph != "E" {
				continue
			}
			ps, ok := ev.Args["ps"].(float64)
			if !ok {
				t.Fatalf("%s: %s record for %q lacks args.ps", filepath.Base(path), ev.Ph, ev.Name)
			}
			switch {
			case ev.Name == "iteration" && ev.Ph == "B":
				open, insideIter = int64(ps), true
			case ev.Name == "iteration" && ev.Ph == "E":
				iterPS += int64(ps) - open
				iters++
				insideIter = false
			case ev.Name != "marked_phase" && ev.Ph == "B":
				regionOpen = int64(ps)
			case ev.Name != "marked_phase" && ev.Ph == "E":
				if insideIter { // skip cold-start regions outside the loop
					regionPS += int64(ps) - regionOpen
				}
			}
		}
		if iters == 0 || iterPS <= 0 {
			t.Errorf("%s: no timed iterations in the trace", filepath.Base(path))
		}
		if regionPS > iterPS {
			t.Errorf("%s: region spans (%d ps) exceed the iteration spans (%d ps)",
				filepath.Base(path), regionPS, iterPS)
		}
		summary := strings.TrimSuffix(path, ".trace.json") + ".summary.txt"
		txt, err := os.ReadFile(summary)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(txt), "phase breakdown") {
			t.Errorf("%s lacks the phase breakdown", filepath.Base(summary))
		}
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunNothingSelected(t *testing.T) {
	var out, errw bytes.Buffer
	err := run(nil, &out, &errw)
	if !errors.Is(err, errUsage) {
		t.Fatalf("got %v, want errUsage", err)
	}
	if !strings.Contains(errw.String(), "Usage of sweep") {
		t.Error("usage text not printed to stderr")
	}
}

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-nope"},
		{"-fig", "1", "-class", "Q"},
		{"-fig", "3"},
		{"-fig", "1", "stray"},
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if err := run(args, &out, &errw); err == nil {
			t.Errorf("run(%v) succeeded, want an error", args)
		}
	}
}

func TestRunTable1(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-table", "1", "-quiet"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table 1.") {
		t.Errorf("stdout lacks the table header:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "cells simulated") {
		t.Error("stderr lacks the closing cache-stats line")
	}
}

// TestRunFigure5Traced is the CLI-level acceptance check for -trace:
// `sweep -fig 5 -trace dir` must render the figure and drop one
// Chrome-loadable JSON plus one text summary per cell, with exact
// picosecond timestamps in args.ps and the region spans contained in the
// iteration spans.
func TestRunFigure5Traced(t *testing.T) {
	dir := t.TempDir()
	var out, errw bytes.Buffer
	args := []string{"-fig", "5", "-class", "S", "-benches", "BT", "-quiet", "-trace", dir}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 5.") {
		t.Errorf("stdout lacks the figure:\n%s", out.String())
	}
	traces, err := filepath.Glob(filepath.Join(dir, "*.trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	// Figure 5 on one benchmark has four bars: ft, ft-IRIXmig,
	// ft-upmlib, ft-recrep.
	if len(traces) != 4 {
		t.Fatalf("got %d trace files, want 4: %v", len(traces), traces)
	}
	for _, path := range traces {
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var tr struct {
			TraceEvents []struct {
				Name string         `json:"name"`
				Ph   string         `json:"ph"`
				Args map[string]any `json:"args"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(blob, &tr); err != nil {
			t.Fatalf("%s is not Chrome-loadable JSON: %v", filepath.Base(path), err)
		}
		var iterPS, regionPS, open, regionOpen int64
		iters := 0
		insideIter := false
		for _, ev := range tr.TraceEvents {
			if ev.Ph != "B" && ev.Ph != "E" {
				continue
			}
			ps, ok := ev.Args["ps"].(float64)
			if !ok {
				t.Fatalf("%s: %s record for %q lacks args.ps", filepath.Base(path), ev.Ph, ev.Name)
			}
			switch {
			case ev.Name == "iteration" && ev.Ph == "B":
				open, insideIter = int64(ps), true
			case ev.Name == "iteration" && ev.Ph == "E":
				iterPS += int64(ps) - open
				iters++
				insideIter = false
			case ev.Name != "marked_phase" && ev.Ph == "B":
				regionOpen = int64(ps)
			case ev.Name != "marked_phase" && ev.Ph == "E":
				if insideIter { // skip cold-start regions outside the loop
					regionPS += int64(ps) - regionOpen
				}
			}
		}
		if iters == 0 || iterPS <= 0 {
			t.Errorf("%s: no timed iterations in the trace", filepath.Base(path))
		}
		if regionPS > iterPS {
			t.Errorf("%s: region spans (%d ps) exceed the iteration spans (%d ps)",
				filepath.Base(path), regionPS, iterPS)
		}
		summary := strings.TrimSuffix(path, ".trace.json") + ".summary.txt"
		txt, err := os.ReadFile(summary)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(txt), "phase breakdown") {
			t.Errorf("%s lacks the phase breakdown", filepath.Base(summary))
		}
	}
}
